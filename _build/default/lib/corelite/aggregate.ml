type t = {
  queue_capacity : int;
  queues : (int, Net.Packet.t Queue.t) Hashtbl.t;  (* micro -> ingress queue *)
  round_robin : int Queue.t;  (* micro ids with packets waiting *)
  consumers : (int, Net.Packet.t -> unit) Hashtbl.t;
  mutable edge : Edge.t option;  (* set once in [create] *)
  mutable backlog : int;
  mutable edge_drops : int;
  mutable undeliverable : int;
}

let edge t = match t.edge with Some e -> e | None -> assert false

let backlog t = t.backlog

let edge_drops t = t.edge_drops

let undeliverable t = t.undeliverable

(* Round-robin service: take the next micro-flow with a waiting packet;
   re-queue it at the tail if it still has backlog. *)
let supply t () =
  match Queue.take_opt t.round_robin with
  | None ->
    Edge.set_backlogged (edge t) false;
    None
  | Some micro ->
    let q = Hashtbl.find t.queues micro in
    let pkt = Queue.pop q in
    t.backlog <- t.backlog - 1;
    if not (Queue.is_empty q) then Queue.push micro t.round_robin;
    if Queue.is_empty t.round_robin then Edge.set_backlogged (edge t) false;
    Some pkt

let deliver t pkt =
  match Hashtbl.find_opt t.consumers pkt.Net.Packet.micro with
  | Some consume -> consume pkt
  | None -> t.undeliverable <- t.undeliverable + 1

let create ~params ~topology ~flow ?(floor = 0.) ?(epoch_offset = 0.)
    ?(queue_capacity = 32) () =
  if queue_capacity <= 0 then
    invalid_arg "Aggregate.create: queue_capacity must be positive";
  let t =
    {
      queue_capacity;
      queues = Hashtbl.create 8;
      round_robin = Queue.create ();
      consumers = Hashtbl.create 8;
      edge = None;
      backlog = 0;
      edge_drops = 0;
      undeliverable = 0;
    }
  in
  t.edge <-
    Some
      (Edge.create ~params ~topology ~flow ~floor ~epoch_offset ~supply:(supply t)
         ~deliver:(deliver t) ());
  t

let start t = Edge.start (edge t)

let stop t = Edge.stop (edge t)

let submit t pkt =
  let micro = pkt.Net.Packet.micro in
  let q =
    match Hashtbl.find_opt t.queues micro with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.queues micro q;
      q
  in
  if Queue.length q >= t.queue_capacity then begin
    t.edge_drops <- t.edge_drops + 1;
    false
  end
  else begin
    if Queue.is_empty q then Queue.push micro t.round_robin;
    Queue.push pkt q;
    t.backlog <- t.backlog + 1;
    (* Waking the shaper: data is available again. *)
    Edge.set_backlogged (edge t) true;
    true
  end

let set_consumer t ~micro consume = Hashtbl.replace t.consumers micro consume
