type t = {
  k : float;
  mutable rate : float;
  mutable last : float option;  (* time of last arrival *)
}

let create ~k =
  if k <= 0. then invalid_arg "Rate_estimator.create: k must be positive";
  { k; rate = 0.; last = None }

let update t ~now ~amount =
  (match t.last with
  | None -> t.rate <- amount /. t.k
  | Some last ->
    let gap = now -. last in
    if gap <= 1e-12 then t.rate <- t.rate +. (amount /. t.k)
    else begin
      let decay = exp (-.gap /. t.k) in
      t.rate <- ((1. -. decay) *. amount /. gap) +. (decay *. t.rate)
    end);
  t.last <- Some now;
  t.rate

let value t = t.rate

let read t ~now =
  match t.last with
  | None -> 0.
  | Some last ->
    let gap = now -. last in
    if gap <= 0. then t.rate else t.rate *. exp (-.gap /. t.k)
