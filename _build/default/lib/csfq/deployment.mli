(** Wires a full weighted-CSFQ deployment onto a topology: one {!Edge}
    agent per flow, {!Core} logic on each core link, and loss
    indications travelling back to the source agent with the
    reverse-path propagation delay. *)

type t

type flow_spec = { flow : Net.Flow.t; floor : float }

val spec : ?floor:float -> Net.Flow.t -> flow_spec

(** [attach_cores] (default true) controls whether the CSFQ per-link
    logic is installed. With [false] the deployment degenerates to
    plain loss-driven adaptive sources over whatever queue discipline
    the links carry — the DropTail/RED/FRED comparator of the
    related-work ablation. *)
val build :
  ?attach_cores:bool ->
  params:Params.t ->
  rng:Sim.Rng.t ->
  topology:Net.Topology.t ->
  flows:flow_spec list ->
  core_links:Net.Link.t list ->
  unit ->
  t

val agent : t -> int -> Edge.t
(** @raise Not_found for an unknown flow id. *)

val agents : t -> (int * Edge.t) list
(** Sorted by flow id. *)

val cores : t -> Core.t list

val start_flow : t -> int -> unit

val stop_flow : t -> int -> unit

val start_all : t -> unit

(** Total packets lost on core links (early drops + overflows). *)
val total_drops : t -> int

(** Core-link packet losses of one flow. *)
val drops_of_flow : t -> int -> int
