(** Weighted CSFQ core-router logic for one outgoing link (SIGCOMM '98,
    Figure 2 pseudocode, with normalized-rate labels for the weighted
    variant).

    On each arrival the router estimates the aggregate arrival rate [A]
    and accepted rate [F] by exponential averaging, drops the packet
    with probability [max(0, 1 - alpha / label)], and relabels accepted
    packets to [min(label, alpha)] so downstream routers see the flow's
    leaving rate. The fair share [alpha] (in normalized pkt/s) is
    updated once per [K_link] window: multiplicatively ([alpha *= C/F])
    while congested ([A >= C]), or to the largest label observed while
    uncongested. Every buffer overflow shrinks [alpha] by the overflow
    penalty. *)

type t

val attach : params:Params.t -> rng:Sim.Rng.t -> Net.Link.t -> t
(** Installs the drop/relabel hook on the link.
    @raise Invalid_argument if the link already has hooks. *)

val link : t -> Net.Link.t

(** Current fair-share estimate, normalized pkt/s; [None] before the
    first estimation window completes. *)
val alpha : t -> float option

(** Whether the estimator currently believes the link is congested. *)
val congested : t -> bool

(** Estimated aggregate arrival / accepted rates, pkt/s. *)
val arrival_rate : t -> float

val accepted_rate : t -> float

(** Packets dropped by the probabilistic filter. *)
val early_drops : t -> int

(** Notify the estimator of a buffer overflow on the link (wired by the
    deployment from the link's [on_drop]). *)
val note_overflow : t -> unit

val detach : t -> unit
