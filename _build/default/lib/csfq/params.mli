(** Weighted CSFQ configuration.

    Defaults follow the paper's Section 4 comparison setup: [K] (flow
    rate estimation) and [K_link] (aggregate/fair-share estimation
    window) both 100 ms, and the same source adaptation constants as
    Corelite. [overflow_penalty] is the CSFQ heuristic that shrinks the
    fair-share estimate by a small percentage on every buffer
    overflow. *)

type t = {
  k_flow : float;  (** flow rate estimation time constant, seconds *)
  k_link : float;  (** fair-share estimation window, seconds *)
  overflow_penalty : float;  (** multiplicative alpha decay per overflow *)
  source : Net.Source.params;
}

val default : t
