type t = {
  k_flow : float;
  k_link : float;
  overflow_penalty : float;
  source : Net.Source.params;
}

let default =
  {
    k_flow = 0.1;
    k_link = 0.1;
    overflow_penalty = 0.97;
    source = Net.Source.default_params;
  }
