lib/csfq/csfq.ml: Core Deployment Edge Params Rate_estimator
