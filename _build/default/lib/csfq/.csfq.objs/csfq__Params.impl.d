lib/csfq/params.ml: Net
