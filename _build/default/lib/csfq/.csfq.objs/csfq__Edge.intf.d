lib/csfq/edge.mli: Net Params
