lib/csfq/deployment.mli: Core Edge Net Params Sim
