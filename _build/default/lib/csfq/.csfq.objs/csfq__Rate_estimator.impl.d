lib/csfq/rate_estimator.ml:
