lib/csfq/params.mli: Net
