lib/csfq/deployment.ml: Core Edge Hashtbl List Net Option Params Printf Sim
