lib/csfq/edge.ml: Net Params Rate_estimator Sim
