lib/csfq/core.mli: Net Params Sim
