lib/csfq/rate_estimator.mli:
