lib/csfq/core.ml: Float Logs Net Params Rate_estimator Sim
