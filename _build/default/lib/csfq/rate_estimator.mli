(** Exponential averaging rate estimator (CSFQ, SIGCOMM '98, eq. 3).

    On each arrival of [amount] units at time [now], with [T] the
    inter-arrival gap and [K] the time constant:

    [r <- (1 - e^(-T/K)) * amount/T + e^(-T/K) * r]

    The time-based decay makes the estimate robust to the packet
    inter-arrival pattern, unlike a per-packet EWMA. *)

type t

val create : k:float -> t
(** @raise Invalid_argument if [k <= 0.]. *)

(** Fold one arrival into the estimate and return the new rate
    (units of [amount] per second). Simultaneous arrivals are handled
    by the [T -> 0] limit, [r <- r + amount/K]. *)
val update : t -> now:float -> amount:float -> float

(** Current estimate without new data. *)
val value : t -> float

(** Decay the estimate to account for silence since the last arrival
    (used when reading the estimate long after traffic stopped). *)
val read : t -> now:float -> float
