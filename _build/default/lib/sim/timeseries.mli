(** Append-only time series of (time, value) samples. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val add : t -> float -> float -> unit

val length : t -> int

val is_empty : t -> bool

(** Samples in insertion order. *)
val to_array : t -> (float * float) array

val last : t -> (float * float) option

(** Mean of values with time in [[from, until]]; [None] if no sample
    falls in the window. *)
val window_mean : t -> from:float -> until:float -> float option

(** Value of the most recent sample at or before [time]; [None] if the
    series starts later. Assumes samples were added in time order. *)
val value_at : t -> float -> float option

val iter : t -> (float -> float -> unit) -> unit

(** [smooth t ~window] returns a new series on the same time grid whose
    value at each sample is the trailing mean of the samples within
    [window] seconds. Useful to strip sawtooth oscillation before
    convergence tests. *)
val smooth : t -> window:float -> t
