type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
}

let create ?(name = "") () = { name; times = [||]; values = [||]; size = 0 }

let name t = t.name

let grow t =
  let capacity = Array.length t.times in
  if t.size = capacity then begin
    let capacity' = if capacity = 0 then 256 else 2 * capacity in
    let times' = Array.make capacity' 0. in
    let values' = Array.make capacity' 0. in
    Array.blit t.times 0 times' 0 t.size;
    Array.blit t.values 0 values' 0 t.size;
    t.times <- times';
    t.values <- values'
  end

let add t time value =
  grow t;
  t.times.(t.size) <- time;
  t.values.(t.size) <- value;
  t.size <- t.size + 1

let length t = t.size

let is_empty t = t.size = 0

let to_array t = Array.init t.size (fun i -> (t.times.(i), t.values.(i)))

let last t = if t.size = 0 then None else Some (t.times.(t.size - 1), t.values.(t.size - 1))

let window_mean t ~from ~until =
  let sum = ref 0. and count = ref 0 in
  for i = 0 to t.size - 1 do
    if t.times.(i) >= from && t.times.(i) <= until then begin
      sum := !sum +. t.values.(i);
      incr count
    end
  done;
  if !count = 0 then None else Some (!sum /. float_of_int !count)

let value_at t time =
  (* Binary search for the last index with times.(i) <= time. *)
  if t.size = 0 || t.times.(0) > time then None
  else begin
    let lo = ref 0 and hi = ref (t.size - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.times.(mid) <= time then lo := mid else hi := mid - 1
    done;
    Some t.values.(!lo)
  end

let iter t f =
  for i = 0 to t.size - 1 do
    f t.times.(i) t.values.(i)
  done

let smooth t ~window =
  if window < 0. then invalid_arg "Timeseries.smooth: negative window";
  let out = create ~name:t.name () in
  let first = ref 0 in
  let sum = ref 0. in
  for i = 0 to t.size - 1 do
    sum := !sum +. t.values.(i);
    while t.times.(!first) < t.times.(i) -. window do
      sum := !sum -. t.values.(!first);
      incr first
    done;
    add out t.times.(i) (!sum /. float_of_int (i - !first + 1))
  done;
  out
