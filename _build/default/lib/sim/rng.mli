(** Deterministic pseudo-random number generator (splitmix64).

    Each simulation component owns its own generator (obtained by
    {!split}), so adding or removing one component never perturbs the
    random sequence seen by the others. *)

type t

(** [create seed] builds a generator from a seed. Equal seeds produce
    equal streams. *)
val create : int -> t

(** A statistically independent generator derived from [t]'s stream. *)
val split : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] draws from Exp(1/mean). *)
val exponential : t -> mean:float -> float

(** [pareto t ~shape ~mean] draws from a Pareto distribution with tail
    index [shape] scaled to the given mean — the heavy-tailed on/off
    period model of classic ns-2 traffic generators.
    @raise Invalid_argument unless [shape > 1] (the mean must exist). *)
val pareto : t -> shape:float -> mean:float -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
