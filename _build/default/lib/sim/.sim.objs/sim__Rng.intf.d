lib/sim/rng.mli:
