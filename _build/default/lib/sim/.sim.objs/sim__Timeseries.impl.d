lib/sim/timeseries.ml: Array
