lib/sim/timeseries.mli:
