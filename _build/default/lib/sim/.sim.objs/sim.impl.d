lib/sim/sim.ml: Engine Event_queue Rng Stats Timeseries
