lib/sim/stats.mli:
