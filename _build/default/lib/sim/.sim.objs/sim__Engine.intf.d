lib/sim/engine.mli:
