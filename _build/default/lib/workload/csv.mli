(** CSV export of experiment series (for plotting the figures). *)

(** [write_series ~path series] writes a wide CSV: first column [time],
    one column per flow (header [flowN]). All series must share the
    sampling grid (the {!Runner} guarantees this). *)
val write_series : path:string -> (int * Sim.Timeseries.t) list -> unit

(** Write [<prefix>_rates.csv], [<prefix>_goodput.csv] and
    [<prefix>_cumulative.csv] under [dir] (created if missing). *)
val write_result : dir:string -> prefix:string -> Runner.result -> unit
