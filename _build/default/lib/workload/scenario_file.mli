(** Textual scenario files.

    A small line-oriented format for defining experiments without
    writing OCaml — one directive per line, [#] starts a comment:

    {v
    # Two-class chain with a contracted flow.
    topology chain cores=4 bandwidth=4000000 delay=0.04 queue=40
    scheme corelite          # corelite | csfq | plain
    seed 7
    duration 200

    flow 1 weight 2 from 1 to 2
    flow 2 weight 1 from 1 to 4 floor 50
    flow 3 weight 3 from 2 to 4

    start 1 at 0
    start 2 at 0
    start 3 at 10
    stop 3 at 150
    v}

    Flows not mentioned in any [start] directive never run. The
    [topology] directive and at least one flow and one start are
    required; [duration] is required; [scheme] defaults to corelite,
    [seed] to 42. *)

type t = {
  scheme : Runner.scheme;
  cores : int;
  bandwidth : float;
  delay : float;
  queue_capacity : int;
  flows : (int * float * int * int) list;  (** (id, weight, entry, exit) *)
  floors : (int * float) list;
  schedule : (float * Runner.action) list;
  duration : float;
  seed : int;
}

(** Parse scenario text. [Error message] carries the offending line
    number and reason. *)
val parse : string -> (t, string) result

(** Read and parse a file. *)
val load : string -> (t, string) result

(** Render back to the textual format ([parse (to_string t) = Ok t]
    modulo float formatting — property-tested). *)
val to_string : t -> string

(** Build the network and execute the scenario. *)
val run : t -> Runner.result
