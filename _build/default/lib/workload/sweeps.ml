type point = {
  label : string;
  jain : float;
  mean_error : float;
  core_drops : int;
  convergence : float option;
  feedback : int;
  mean_delay : float;
}

(* The Figure 5 workload under an arbitrary scheme/queue discipline.
   [measure_flows] restricts the fairness metrics to a subset (used by
   the burst sweep, where application-limited flows have no meaningful
   allowed rate while idle). *)
let run_workload ?(seed = 42) ?delay ?core_qdisc ?(bursty = []) ?burst_distribution
    ?measure_flows ~label scheme =
  let engine = Sim.Engine.create () in
  let core_qdisc = Option.map (fun f -> f engine) core_qdisc in
  let network =
    Network.topology1 ~engine ?delay ?core_qdisc
      ~flow_ids:(List.init 10 (fun i -> i + 1))
      ~weights:Figures.weights_s42 ()
  in
  let schedule = List.init 10 (fun i -> (0., Runner.Start (i + 1))) in
  let result =
    Runner.run ~scheme ~network ~seed ~bursty ?burst_distribution ~schedule
      ~duration:80. ()
  in
  let active = List.init 10 (fun i -> i + 1) in
  let measure = Option.value ~default:active measure_flows in
  let reference = Network.expected_rates network ~active in
  let measured =
    Array.of_list
      (List.map (fun id -> Runner.mean_rate result ~flow:id ~from:50. ~until:80.) measure)
  in
  let expected = Array.of_list (List.map (fun id -> List.assoc id reference) measure) in
  let series =
    List.map
      (fun id ->
        ( Sim.Timeseries.smooth (List.assoc id result.Runner.rate_series) ~window:5.,
          List.assoc id reference ))
      measure
  in
  let delays = List.map snd result.Runner.mean_delays in
  {
    label;
    jain = Runner.jain ~flows:measure result ~from:50. ~until:80.;
    mean_error = Fairness.Metrics.mean_relative_error ~measured ~expected;
    core_drops = result.Runner.core_drops;
    convergence = Fairness.Metrics.convergence_time ~tolerance:0.2 ~hold:5. series;
    feedback = result.Runner.feedback_markers;
    mean_delay =
      List.fold_left ( +. ) 0. delays /. float_of_int (List.length delays);
  }

let run_point ?seed ?delay ~label params =
  run_workload ?seed ?delay ~label (Runner.Corelite params)

let base = Corelite.Params.default

let sweep name values apply =
  List.map
    (fun v -> run_point ~label:(Printf.sprintf "%s=%g" name v) (apply base v))
    values

let core_epoch () =
  sweep "core_epoch" [ 0.025; 0.05; 0.1; 0.2; 0.4 ] (fun p v ->
      { p with Corelite.Params.core_epoch = v })

let qthresh () =
  sweep "qthresh" [ 2.; 4.; 8.; 16.; 24. ] (fun p v ->
      { p with Corelite.Params.qthresh = v })

let k1 () =
  sweep "k1" [ 0.5; 1.; 2.; 4. ] (fun p v -> { p with Corelite.Params.k1 = v })

let latency () =
  List.map
    (fun d ->
      run_point ~delay:d ~label:(Printf.sprintf "latency=%gms" (1000. *. d)) base)
    [ 0.002; 0.01; 0.04; 0.08 ]

let k_correction () =
  sweep "k" [ 0.; 0.001; 0.005; 0.02; 0.1 ] (fun p v ->
      { p with Corelite.Params.estimator = Corelite.Congestion.Mm1_cubic v })

let estimator () =
  [
    run_point ~label:"est=mm1_cubic"
      { base with Corelite.Params.estimator = Corelite.Congestion.Mm1_cubic 0.005 };
    run_point ~label:"est=linear"
      { base with Corelite.Params.estimator = Corelite.Congestion.Linear_excess 0.5 };
    run_point ~label:"est=ewma"
      {
        base with
        Corelite.Params.estimator =
          Corelite.Congestion.Ewma_threshold { gain = 0.3; scale = 0.5 };
      };
  ]

let cache_size () =
  List.map
    (fun n ->
      run_point
        ~label:(Printf.sprintf "cache=%d" n)
        {
          base with
          Corelite.Params.selector = Corelite.Params.Cache;
          cache_size = n;
        })
    [ 16; 64; 256; 512; 2048 ]

let selector () =
  [
    run_point ~label:"selector=cache"
      { base with Corelite.Params.selector = Corelite.Params.Cache };
    run_point ~label:"selector=stateless"
      { base with Corelite.Params.selector = Corelite.Params.Stateless };
  ]

let rav_gain () =
  sweep "rav_gain" [ 0.005; 0.02; 0.1; 0.5 ] (fun p v ->
      { p with Corelite.Params.rav_gain = v })

let wav_gain () =
  sweep "wav_gain" [ 0.05; 0.25; 0.5; 1.0 ] (fun p v ->
      { p with Corelite.Params.wav_gain = v })

let pw_cap () =
  sweep "pw_cap" [ 0.5; 1.; 2.; 4. ] (fun p v ->
      { p with Corelite.Params.pw_cap = v })

let edge_epoch () =
  sweep "edge_epoch" [ 0.1; 0.25; 0.5; 1.0 ] (fun p v ->
      {
        p with
        Corelite.Params.source = { p.Corelite.Params.source with Net.Source.epoch = v };
      })

let burst () =
  (* Flows 1-5 turn application-limited (exponential on/off, mean 2 s
     each way); flows 6-10 stay backlogged. Fairness should survive for
     the backlogged flows under both selectors — the paper's
     "insensitive to bursty flows" claim. *)
  let bursty = List.init 5 (fun i -> (i + 1, 2., 2.)) in
  (* Metrics cover the backlogged flows 6-10 only; note their reference
     is still the all-active max-min, so some positive error (they
     absorb the bursty flows' slack) is expected — fairness among them
     is the claim under test. *)
  let measure_flows = [ 6; 7; 8; 9; 10 ] in
  [
    run_workload ~measure_flows ~label:"steady+stateless" (Runner.Corelite base);
    run_workload ~bursty ~measure_flows ~label:"burst+stateless" (Runner.Corelite base);
    run_workload ~bursty ~measure_flows ~label:"burst+cache"
      (Runner.Corelite { base with Corelite.Params.selector = Corelite.Params.Cache });
    run_workload ~bursty ~measure_flows ~label:"burst+csfq" (Runner.Csfq Csfq.Params.default);
    (* Heavy-tailed (Pareto 1.5) burst lengths: long-range dependence
       stresses the history-based feedback far more than Markovian
       bursts. *)
    run_workload ~bursty ~burst_distribution:(Net.Onoff.Pareto 1.5) ~measure_flows
      ~label:"pareto+stateless" (Runner.Corelite base);
  ]

let qdisc () =
  let red_params = { Net.Qdisc.default_red_params with Net.Qdisc.capacity = 40 } in
  let mk_red engine () =
    Net.Qdisc.red ~params:red_params ~rng:(Sim.Rng.create 97)
      ~now:(fun () -> Sim.Engine.now engine)
      ()
  in
  let mk_fred engine () =
    Net.Qdisc.fred ~params:red_params ~rng:(Sim.Rng.create 98)
      ~now:(fun () -> Sim.Engine.now engine)
      ()
  in
  [
    run_workload ~label:"corelite+droptail" (Runner.Corelite base);
    run_workload ~label:"csfq+droptail" (Runner.Csfq Csfq.Params.default);
    run_workload ~label:"plain+droptail" (Runner.Plain Csfq.Params.default);
    run_workload ~label:"plain+red"
      ~core_qdisc:(fun engine -> mk_red engine)
      (Runner.Plain Csfq.Params.default);
    run_workload ~label:"plain+fred"
      ~core_qdisc:(fun engine -> mk_fred engine)
      (Runner.Plain Csfq.Params.default);
    (* The stateful ideal: per-flow DRR scheduling with the flows'
       weights as quanta — what Corelite approximates statelessly. *)
    run_workload ~label:"plain+drr"
      ~core_qdisc:(fun _engine () ->
        Net.Qdisc.drr ~weight:(fun flow -> Figures.weights_s42 flow) ~capacity:20 ())
      (Runner.Plain Csfq.Params.default);
  ]

let all () =
  [
    ("core epoch (s)", core_epoch ());
    ("congestion threshold (pkts)", qthresh ());
    ("marker spacing K1", k1 ());
    ("link latency", latency ());
    ("cubic coefficient k", k_correction ());
    ("congestion estimator", estimator ());
    ("marker cache size", cache_size ());
    ("selector variant", selector ());
    ("stateless pw cap", pw_cap ());
    ("rav EWMA gain", rav_gain ());
    ("wav EWMA gain", wav_gain ());
    ("edge adaptation epoch (s)", edge_epoch ());
    ("queue discipline / scheme (Section 5)", qdisc ());
    ("bursty sources (Section 2 claim)", burst ());
  ]

let pp_points ppf (name, points) =
  Format.fprintf ppf "@[<v>-- sensitivity: %s@," name;
  List.iter
    (fun p ->
      Format.fprintf ppf
        "   %-18s jain=%.4f err=%5.1f%% drops=%5d delay=%5.1fms conv=%s@," p.label
        p.jain
        (100. *. p.mean_error)
        p.core_drops
        (1000. *. p.mean_delay)
        (match p.convergence with
        | Some t -> Printf.sprintf "%.1f s" t
        | None -> "none"))
    points;
  Format.fprintf ppf "@]"
