(** Unresponsive (misbehaving) constant-rate sources.

    A blaster ignores every congestion signal and keeps pacing at its
    configured rate — the classic stress case for fair-allocation
    schemes. It is honest about identification: it labels packets with
    its measured normalized rate (so CSFQ can police it) and, when
    [corelite_markers] is set, attaches a Corelite marker to every
    packet with its true normalized rate (so selective feedback targets
    it — feedback it then ignores). *)

type t

(** [attach ~network ~flow ~rate ()] installs the blaster on the given
    flow id of the network (path routing + egress sink) and starts
    pacing immediately. [corelite_markers] defaults to false.
    @raise Not_found for an unknown flow id;
    @raise Invalid_argument on a non-positive rate. *)
val attach :
  network:Network.t ->
  flow:int ->
  rate:float ->
  ?corelite_markers:bool ->
  unit ->
  t

val stop : t -> unit

(** Packets delivered end-to-end. *)
val delivered : t -> int

(** Packets injected so far. *)
val sent : t -> int

(** Delivered/sent — the fraction surviving the network's policing. *)
val survival : t -> float
