(** Raw TCP flows over the cloud — no edge shaping.

    Each network flow carries one TCP bulk transfer injected straight
    at the ingress node; ACKs return over the reverse-path propagation
    delay. An ingress labelling shim stamps every segment with the
    flow's measured normalized rate, so a weighted-CSFQ core can police
    TCP exactly as it would police labelled UDP. Over plain queue
    disciplines the labels are inert.

    This is the comparison the paper's ongoing-work section gestures
    at: how close does each core discipline bring {e closed-loop} TCP
    traffic to the weighted-fair allocation, without any cooperation
    from the end hosts? *)

type t

(** [build ~network ()] creates one TCP connection per network flow.
    [attach_csfq] (default false) installs weighted-CSFQ logic on the
    core links; otherwise whatever queue discipline the network was
    built with polices the flows. *)
val build :
  ?tcp_params:Net.Tcp.params ->
  ?csfq_params:Csfq.Params.t ->
  ?attach_csfq:bool ->
  ?seed:int ->
  network:Network.t ->
  unit ->
  t

val start : t -> unit

val stop : t -> unit

(** In-order segments delivered to a flow's receiver. *)
val goodput : t -> flow:int -> int

(** All flows, ascending id. *)
val goodputs : t -> (int * int) list

(** Weighted Jain index of the goodputs. *)
val jain : t -> float

val total_retransmits : t -> int
