type t = {
  timer : Sim.Engine.handle;
  sent : int ref;
  delivered : int ref;
}

let attach ~network ~flow ~rate ?(corelite_markers = false) () =
  if rate <= 0. then invalid_arg "Blaster.attach: rate must be positive";
  let engine = network.Network.engine in
  let flow_record = Network.flow network flow in
  let delivered = ref 0 in
  Net.Topology.install_path network.Network.topology ~flow flow_record.Net.Flow.path
    ~sink:(fun _ -> incr delivered);
  let estimator = Csfq.Rate_estimator.create ~k:0.1 in
  let weight = flow_record.Net.Flow.weight in
  let normalized = rate /. weight in
  let seq = ref 0 in
  let sent = ref 0 in
  let emit () =
    incr seq;
    let now = Sim.Engine.now engine in
    let estimate = Csfq.Rate_estimator.update estimator ~now ~amount:1. in
    let marker =
      if corelite_markers then
        Some
          {
            Net.Packet.edge_id = (Net.Flow.ingress flow_record).Net.Node.id;
            flow_id = flow;
            normalized_rate = normalized;
          }
      else None
    in
    let pkt = Net.Packet.make ~id:!seq ~flow ?marker ~created:now () in
    pkt.Net.Packet.label <- estimate /. weight;
    incr sent;
    Net.Node.receive (Net.Flow.ingress flow_record) pkt
  in
  let timer = Sim.Engine.every engine ~period:(1. /. rate) emit in
  { timer; sent; delivered }

let stop t = Sim.Engine.cancel t.timer

let delivered t = !(t.delivered)

let sent t = !(t.sent)

let survival t =
  if !(t.sent) = 0 then 1. else float_of_int !(t.delivered) /. float_of_int !(t.sent)
