type t = {
  scheme : Runner.scheme;
  cores : int;
  bandwidth : float;
  delay : float;
  queue_capacity : int;
  flows : (int * float * int * int) list;
  floors : (int * float) list;
  schedule : (float * Runner.action) list;
  duration : float;
  seed : int;
}

(* Mutable accumulator while walking the lines. *)
type builder = {
  mutable scheme : Runner.scheme;
  mutable topology : (int * float * float * int) option;  (* cores, bw, delay, queue *)
  mutable flows : (int * float * int * int) list;
  mutable floors : (int * float) list;
  mutable schedule : (float * Runner.action) list;
  mutable duration : float option;
  mutable seed : int;
}

exception Syntax of string

let fail fmt = Printf.ksprintf (fun message -> raise (Syntax message)) fmt

let float_of token label =
  match float_of_string_opt token with
  | Some v -> v
  | None -> fail "%s: expected a number, got %S" label token

let int_of token label =
  match int_of_string_opt token with
  | Some v -> v
  | None -> fail "%s: expected an integer, got %S" label token

(* "key=value" option fields of the topology directive. *)
let topology_options tokens =
  let cores = ref 4
  and bandwidth = ref 4_000_000.
  and delay = ref 0.04
  and queue = ref 40 in
  List.iter
    (fun token ->
      match String.split_on_char '=' token with
      | [ "cores"; v ] -> cores := int_of v "cores"
      | [ "bandwidth"; v ] -> bandwidth := float_of v "bandwidth"
      | [ "delay"; v ] -> delay := float_of v "delay"
      | [ "queue"; v ] -> queue := int_of v "queue"
      | _ -> fail "unknown topology option %S" token)
    tokens;
  (!cores, !bandwidth, !delay, !queue)

let directive b tokens =
  match tokens with
  | [] -> ()
  | "topology" :: "chain" :: options -> b.topology <- Some (topology_options options)
  | "topology" :: kind :: _ -> fail "unknown topology %S (expected: chain)" kind
  | [ "scheme"; "corelite" ] -> b.scheme <- Runner.Corelite Corelite.Params.default
  | [ "scheme"; "csfq" ] -> b.scheme <- Runner.Csfq Csfq.Params.default
  | [ "scheme"; "plain" ] -> b.scheme <- Runner.Plain Csfq.Params.default
  | [ "scheme"; other ] -> fail "unknown scheme %S" other
  | [ "seed"; v ] -> b.seed <- int_of v "seed"
  | [ "duration"; v ] -> b.duration <- Some (float_of v "duration")
  | "flow" :: id :: "weight" :: w :: "from" :: entry :: "to" :: exit :: rest ->
    let id = int_of id "flow id" in
    if List.exists (fun (existing, _, _, _) -> existing = id) b.flows then
      fail "duplicate flow %d" id;
    (match rest with
    | [] -> ()
    | [ "floor"; f ] -> b.floors <- (id, float_of f "floor") :: b.floors
    | _ -> fail "unexpected tokens after flow %d" id);
    b.flows <-
      (id, float_of w "weight", int_of entry "entry core", int_of exit "exit core")
      :: b.flows
  | [ "start"; id; "at"; time ] ->
    b.schedule <-
      (float_of time "start time", Runner.Start (int_of id "flow id")) :: b.schedule
  | [ "stop"; id; "at"; time ] ->
    b.schedule <-
      (float_of time "stop time", Runner.Stop (int_of id "flow id")) :: b.schedule
  | keyword :: _ -> fail "unknown directive %S" keyword

let parse text =
  let b =
    {
      scheme = Runner.Corelite Corelite.Params.default;
      topology = None;
      flows = [];
      floors = [];
      schedule = [];
      duration = None;
      seed = 42;
    }
  in
  try
    List.iteri
      (fun index line ->
        let line =
          match String.index_opt line '#' with
          | Some pos -> String.sub line 0 pos
          | None -> line
        in
        let tokens =
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun token -> token <> "")
        in
        try directive b tokens
        with Syntax message -> fail "line %d: %s" (index + 1) message)
      (String.split_on_char '\n' text);
    let cores, _, _, _ =
      match b.topology with
      | Some t -> t
      | None -> fail "missing 'topology' directive"
    in
    if b.flows = [] then fail "no flows defined";
    List.iter
      (fun (id, weight, entry, exit) ->
        if weight <= 0. then fail "flow %d: weight must be positive" id;
        if entry < 1 || exit > cores || entry > exit then
          fail "flow %d: span %d..%d outside 1..%d" id entry exit cores)
      b.flows;
    List.iter
      (fun (_, action) ->
        let id = match action with Runner.Start id | Runner.Stop id -> id in
        if not (List.exists (fun (existing, _, _, _) -> existing = id) b.flows) then
          fail "schedule references undefined flow %d" id)
      b.schedule;
    if b.schedule = [] then fail "no start directive";
    let duration =
      match b.duration with Some d -> d | None -> fail "missing 'duration'"
    in
    let cores, bandwidth, delay, queue_capacity = Option.get b.topology in
    Ok
      {
        scheme = b.scheme;
        cores;
        bandwidth;
        delay;
        queue_capacity;
        flows = List.rev b.flows;
        floors = b.floors;
        schedule = List.rev b.schedule;
        duration;
        seed = b.seed;
      }
  with Syntax message -> Error message

let to_string t =
  let buffer = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  line "topology chain cores=%d bandwidth=%g delay=%g queue=%d" t.cores t.bandwidth
    t.delay t.queue_capacity;
  line "scheme %s" (Runner.scheme_name t.scheme);
  line "seed %d" t.seed;
  line "duration %g" t.duration;
  List.iter
    (fun (id, weight, entry, exit) ->
      match List.assoc_opt id t.floors with
      | Some floor ->
        line "flow %d weight %g from %d to %d floor %g" id weight entry exit floor
      | None -> line "flow %d weight %g from %d to %d" id weight entry exit)
    t.flows;
  List.iter
    (fun (time, action) ->
      match action with
      | Runner.Start id -> line "start %d at %g" id time
      | Runner.Stop id -> line "stop %d at %g" id time)
    t.schedule;
  Buffer.contents buffer

let load path =
  let ic = open_in path in
  let finally () = close_in ic in
  Fun.protect ~finally (fun () ->
      parse (really_input_string ic (in_channel_length ic)))

let run t =
  let engine = Sim.Engine.create () in
  let network =
    Network.chain ~engine ~bandwidth:t.bandwidth ~delay:t.delay
      ~queue_capacity:t.queue_capacity ~cores:t.cores ~specs:t.flows ()
  in
  Runner.run ~scheme:t.scheme ~network ~seed:t.seed ~floors:t.floors
    ~schedule:t.schedule ~duration:t.duration ()
