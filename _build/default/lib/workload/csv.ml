let write_series ~path series =
  let oc = open_out path in
  let finally () = close_out oc in
  Fun.protect ~finally (fun () ->
      let ids = List.map fst series in
      let columns = List.map (fun (_, ts) -> Sim.Timeseries.to_array ts) series in
      output_string oc "time";
      List.iter (fun id -> output_string oc (Printf.sprintf ",flow%d" id)) ids;
      output_char oc '\n';
      let rows = List.fold_left (fun acc c -> Stdlib.min acc (Array.length c)) max_int columns in
      let rows = if rows = max_int then 0 else rows in
      for i = 0 to rows - 1 do
        let time, _ = (List.hd columns).(i) in
        output_string oc (Printf.sprintf "%.3f" time);
        List.iter
          (fun column ->
            let _, v = column.(i) in
            output_string oc (Printf.sprintf ",%.4f" v))
          columns;
        output_char oc '\n'
      done)

let write_result ~dir ~prefix (result : Runner.result) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let file kind = Filename.concat dir (Printf.sprintf "%s_%s.csv" prefix kind) in
  write_series ~path:(file "rates") result.Runner.rate_series;
  write_series ~path:(file "goodput") result.Runner.goodput_series;
  write_series ~path:(file "cumulative") result.Runner.cumulative
