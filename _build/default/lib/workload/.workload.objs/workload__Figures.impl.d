lib/workload/figures.ml: Array Corelite Csfq Fairness Format List Net Network Option Runner Sim
