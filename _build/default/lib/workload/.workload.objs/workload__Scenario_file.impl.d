lib/workload/scenario_file.ml: Buffer Corelite Csfq Fun List Network Option Printf Runner Sim String
