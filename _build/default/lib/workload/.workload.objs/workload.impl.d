lib/workload/workload.ml: Blaster Csv Figures Multi_cloud Network Replication Runner Scenario_file Sweeps Tcp_direct Tcp_workload
