lib/workload/multi_cloud.ml: Corelite Hashtbl List Net Network Sim
