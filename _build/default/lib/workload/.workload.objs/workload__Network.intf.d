lib/workload/network.mli: Net Sim
