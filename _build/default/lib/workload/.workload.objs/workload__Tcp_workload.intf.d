lib/workload/tcp_workload.mli: Corelite Net Network
