lib/workload/tcp_direct.ml: Array Csfq Fairness Float List Net Network Sim
