lib/workload/tcp_workload.ml: Array Corelite Fairness Hashtbl List Net Network Sim
