lib/workload/network.ml: Array Fairness List Net Printf Sim
