lib/workload/blaster.mli: Network
