lib/workload/tcp_direct.mli: Csfq Net Network
