lib/workload/blaster.ml: Csfq Net Network Sim
