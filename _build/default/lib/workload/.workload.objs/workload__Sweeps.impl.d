lib/workload/sweeps.ml: Array Corelite Csfq Fairness Figures Format List Net Network Option Printf Runner Sim
