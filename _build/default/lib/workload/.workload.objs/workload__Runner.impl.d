lib/workload/runner.ml: Array Corelite Csfq Fairness Hashtbl List Net Network Option Printf Sim
