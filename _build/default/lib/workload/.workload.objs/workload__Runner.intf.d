lib/workload/runner.mli: Corelite Csfq Net Network Sim
