lib/workload/multi_cloud.mli: Corelite Network
