lib/workload/csv.mli: Runner Sim
