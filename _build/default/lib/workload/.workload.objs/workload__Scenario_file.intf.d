lib/workload/scenario_file.mli: Runner
