lib/workload/csv.ml: Array Filename Fun List Printf Runner Sim Stdlib Sys
