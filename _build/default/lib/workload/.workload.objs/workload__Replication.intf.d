lib/workload/replication.mli: Figures Format
