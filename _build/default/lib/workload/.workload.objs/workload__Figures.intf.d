lib/workload/figures.mli: Format Network Runner Sim
