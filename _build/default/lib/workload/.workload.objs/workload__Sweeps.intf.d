lib/workload/sweeps.mli: Corelite Format
