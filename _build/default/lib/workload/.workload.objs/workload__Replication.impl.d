lib/workload/replication.ml: Figures Float Format List Sim
