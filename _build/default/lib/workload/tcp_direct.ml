type connection = {
  sender : Net.Tcp.Sender.t;
  receiver : Net.Tcp.Receiver.t;
}

type t = {
  network : Network.t;
  connections : (int * connection) list;  (* ascending flow id *)
}

let build ?(tcp_params = Net.Tcp.default_params) ?(csfq_params = Csfq.Params.default)
    ?(attach_csfq = false) ?(seed = 42) ~network () =
  let engine = network.Network.engine in
  let topology = network.Network.topology in
  let rng = Sim.Rng.create seed in
  if attach_csfq then
    List.iter
      (fun link ->
        ignore (Csfq.Core.attach ~params:csfq_params ~rng:(Sim.Rng.split rng) link))
      network.Network.core_links;
  let connections =
    List.map
      (fun flow ->
        let flow_id = flow.Net.Flow.id in
        let weight = flow.Net.Flow.weight in
        let ack_delay = Net.Topology.path_delay topology flow.Net.Flow.path in
        let sender_cell = ref None in
        let send_ack ackno =
          ignore
            (Sim.Engine.schedule engine ~delay:ack_delay (fun () ->
                 match !sender_cell with
                 | Some sender -> Net.Tcp.Sender.ack sender ackno
                 | None -> ()))
        in
        let receiver = Net.Tcp.Receiver.create ~send_ack in
        Net.Topology.install_path topology ~flow:flow_id flow.Net.Flow.path
          ~sink:(fun pkt -> Net.Tcp.Receiver.receive receiver pkt);
        (* Ingress labelling shim: the edge router's only involvement is
           estimating the flow's rate and stamping the normalized
           label — no shaping, no buffering. TCP emits whole windows
           back to back, so the estimation constant must exceed the
           burst scale (an RTT), not the 100 ms used for smooth
           sources; otherwise labels spike during bursts and the core
           drop-storms the window (Stoica et al. discuss exactly this
           interaction). *)
        let k = Float.max csfq_params.Csfq.Params.k_flow (4. *. ack_delay) in
        let estimator = Csfq.Rate_estimator.create ~k in
        let transmit pkt =
          let now = Sim.Engine.now engine in
          let estimate = Csfq.Rate_estimator.update estimator ~now ~amount:1. in
          pkt.Net.Packet.label <- estimate /. weight;
          Net.Node.receive (Net.Flow.ingress flow) pkt
        in
        let sender =
          Net.Tcp.Sender.create ~engine ~params:tcp_params ~flow:flow_id ~micro:1
            ~transmit ()
        in
        sender_cell := Some sender;
        (flow_id, { sender; receiver }))
      network.Network.flows
  in
  { network; connections }

let start t = List.iter (fun (_, c) -> Net.Tcp.Sender.start c.sender) t.connections

let stop t = List.iter (fun (_, c) -> Net.Tcp.Sender.stop c.sender) t.connections

let goodput t ~flow = Net.Tcp.Receiver.delivered (List.assoc flow t.connections).receiver

let goodputs t =
  List.map (fun (id, c) -> (id, Net.Tcp.Receiver.delivered c.receiver)) t.connections

let jain t =
  let rates =
    Array.of_list (List.map (fun (_, g) -> float_of_int g) (goodputs t))
  in
  let weights =
    Array.of_list
      (List.map (fun f -> f.Net.Flow.weight) t.network.Network.flows)
  in
  Fairness.Metrics.jain_index ~rates ~weights

let total_retransmits t =
  List.fold_left
    (fun acc (_, c) -> acc + Net.Tcp.Sender.retransmits c.sender)
    0 t.connections
