bin/experiments.ml: Filename Format Hashtbl List Net Option Printf Sim String Workload
