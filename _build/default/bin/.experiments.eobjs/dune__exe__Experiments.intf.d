bin/experiments.mli:
