(* Command-line driver for the Corelite simulator.

   Subcommands:
   - [figure <id>]  run one of the paper's figure scenarios (fig3..fig10),
     print the phase summaries and optionally write CSV series;
   - [sweep <name>] run a sensitivity/ablation sweep;
   - [run]          run an ad-hoc single-bottleneck scenario with chosen
     scheme, flow count, weights and duration. *)

open Cmdliner

(* Debug logging: -v surfaces the corelite.core / corelite.edge /
   csfq.core log sources (epoch decisions, feedback, alpha updates). *)
let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  let doc = "Enable debug logging of the core/edge control loops." in
  Term.(const setup_logs $ Arg.(value & flag & info [ "v"; "verbose" ] ~doc))

let out_dir_arg =
  let doc = "Directory for CSV output (created if missing)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR" ~doc)

let seed_arg =
  let doc = "Random seed (runs are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)
(* figure *)

let figure_ids =
  [ "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10" ]

let run_figure id out_dir seed =
  match
    List.find_opt (fun s -> s.Workload.Figures.id = id) (Workload.Figures.all ())
  with
  | None ->
    Printf.eprintf "unknown figure %s (expected one of: %s)\n" id
      (String.concat ", " figure_ids);
    exit 1
  | Some spec ->
    let result = Workload.Figures.run ~seed spec in
    let summary = Workload.Figures.summarize spec result in
    Workload.Figures.pp_summary Format.std_formatter summary;
    (match out_dir with
    | Some dir ->
      Workload.Csv.write_result ~dir ~prefix:id result;
      Printf.printf "series written to %s/%s_{rates,goodput,cumulative}.csv\n" dir id
    | None -> ())

let figure_cmd =
  let id =
    let doc = "Figure to reproduce: fig3 .. fig10." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)
  in
  let doc = "Reproduce one figure of the paper's evaluation." in
  Cmd.v
    (Cmd.info "figure" ~doc)
    Term.(const (fun () -> run_figure) $ verbose_arg $ id $ out_dir_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweeps =
  [
    ("core-epoch", Workload.Sweeps.core_epoch);
    ("qthresh", Workload.Sweeps.qthresh);
    ("k1", Workload.Sweeps.k1);
    ("latency", Workload.Sweeps.latency);
    ("k", Workload.Sweeps.k_correction);
    ("estimator", Workload.Sweeps.estimator);
    ("cache-size", Workload.Sweeps.cache_size);
    ("selector", Workload.Sweeps.selector);
    ("pw-cap", Workload.Sweeps.pw_cap);
    ("rav-gain", Workload.Sweeps.rav_gain);
    ("wav-gain", Workload.Sweeps.wav_gain);
    ("edge-epoch", Workload.Sweeps.edge_epoch);
    ("qdisc", Workload.Sweeps.qdisc);
    ("burst", Workload.Sweeps.burst);
  ]

let run_sweep name =
  match List.assoc_opt name sweeps with
  | None ->
    Printf.eprintf "unknown sweep %s (expected one of: %s)\n" name
      (String.concat ", " (List.map fst sweeps));
    exit 1
  | Some sweep ->
    Workload.Sweeps.pp_points Format.std_formatter (name, sweep ());
    Format.print_newline ()

let sweep_cmd =
  let sweep_name =
    let doc = "Sweep to run (see the sweep list in the man page)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SWEEP" ~doc)
  in
  let doc = "Run a sensitivity or ablation sweep." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const (fun () -> run_sweep) $ verbose_arg $ sweep_name)

(* ------------------------------------------------------------------ *)
(* scenario *)

let run_scenario path out_dir =
  match Workload.Scenario_file.load path with
  | Error message ->
    Printf.eprintf "%s: %s\n" path message;
    exit 1
  | Ok scenario ->
    let result = Workload.Scenario_file.run scenario in
    let from = scenario.Workload.Scenario_file.duration *. 0.8 in
    let until = scenario.Workload.Scenario_file.duration in
    Printf.printf "flow  mean rate [%.0f,%.0f]\n" from until;
    List.iter
      (fun (id, rate) -> Printf.printf "%4d  %9.1f\n" id rate)
      (Workload.Runner.mean_rates result ~from ~until);
    Printf.printf "drops=%d jain=%.4f\n" result.Workload.Runner.core_drops
      (Workload.Runner.jain result ~from ~until);
    (match out_dir with
    | Some dir ->
      Workload.Csv.write_result ~dir ~prefix:"scenario" result;
      Printf.printf "series written to %s/scenario_*.csv\n" dir
    | None -> ())

let scenario_cmd =
  let path =
    let doc = "Scenario file (see the Workload.Scenario_file format)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let doc = "Run a scenario described in a text file." in
  Cmd.v (Cmd.info "scenario" ~doc)
    Term.(const (fun () -> run_scenario) $ verbose_arg $ path $ out_dir_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let run_adhoc scheme_name flows duration weights_spec seed out_dir =
  let weights i =
    match weights_spec with
    | "equal" -> 1.
    | "linear" -> float_of_int i
    | "paper" -> Workload.Figures.weights_s42 i
    | s -> (
      (* comma-separated list, e.g. "1,2,3" *)
      let parts = String.split_on_char ',' s in
      match List.nth_opt parts (i - 1) with
      | Some w -> float_of_string w
      | None -> 1.)
  in
  let scheme =
    match scheme_name with
    | "corelite" -> Workload.Runner.Corelite Corelite.Params.default
    | "csfq" -> Workload.Runner.Csfq Csfq.Params.default
    | s ->
      Printf.eprintf "unknown scheme %s (corelite | csfq)\n" s;
      exit 1
  in
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights flows in
  let schedule = List.init flows (fun i -> (0., Workload.Runner.Start (i + 1))) in
  let result = Workload.Runner.run ~scheme ~network ~seed ~schedule ~duration () in
  let from = duration *. 0.8 and until = duration in
  let reference =
    Workload.Network.expected_rates network
      ~active:(List.init flows (fun i -> i + 1))
  in
  Printf.printf "flow  weight  measured  max-min\n";
  List.iter
    (fun flow ->
      let id = flow.Net.Flow.id in
      Printf.printf "%4d  %6.1f  %8.1f  %7.1f\n" id flow.Net.Flow.weight
        (Workload.Runner.mean_rate result ~flow:id ~from ~until)
        (List.assoc id reference))
    network.Workload.Network.flows;
  Printf.printf "drops=%d feedback=%d jain=%.4f\n" result.Workload.Runner.core_drops
    result.Workload.Runner.feedback_markers
    (Workload.Runner.jain result ~from ~until);
  match out_dir with
  | Some dir ->
    Workload.Csv.write_result ~dir ~prefix:"run" result;
    Printf.printf "series written to %s/run_*.csv\n" dir
  | None -> ()

let run_cmd =
  let scheme =
    let doc = "Scheme: corelite or csfq." in
    Arg.(value & opt string "corelite" & info [ "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let flows =
    let doc = "Number of flows sharing the bottleneck." in
    Arg.(value & opt int 4 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let duration =
    let doc = "Simulated duration in seconds." in
    Arg.(value & opt float 120. & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let weights =
    let doc =
      "Weight assignment: equal, linear (flow i has weight i), paper \
       (ceil(i/2)), or a comma-separated list."
    in
    Arg.(value & opt string "equal" & info [ "weights" ] ~docv:"SPEC" ~doc)
  in
  let doc = "Run an ad-hoc single-bottleneck scenario." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const (fun () -> run_adhoc)
      $ verbose_arg $ scheme $ flows $ duration $ weights $ seed_arg $ out_dir_arg)

let () =
  let doc = "Corelite: per-flow weighted rate fairness in a core stateless network" in
  let info = Cmd.info "corelite-sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ figure_cmd; sweep_cmd; run_cmd; scenario_cmd ]))
