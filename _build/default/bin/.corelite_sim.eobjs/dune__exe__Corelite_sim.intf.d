bin/corelite_sim.mli:
