bin/corelite_sim.ml: Arg Cmd Cmdliner Corelite Csfq Format List Logs Logs_fmt Net Printf Sim String Term Workload
