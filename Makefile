# Convenience wrappers around dune. `make coverage` needs bisect_ppx,
# which is deliberately NOT a build dependency — the instrumentation
# stanzas in lib/*/dune are inert unless dune is invoked with
# --instrument-with bisect_ppx, so regular builds and tests never see
# it. CI's coverage job installs it on top of the test switch.

.PHONY: all build test lint bench coverage check-coverage clean

all: build

build:
	dune build

test:
	dune runtest

lint:
	dune build @lint @typelint

bench:
	dune exec bench/hotpath_bench.exe -- --quick --budget 36

# Line-coverage report (text summary + HTML under _coverage/). The
# reporter discovers the *.coverage files dune leaves under _build.
coverage:
	@command -v bisect-ppx-report >/dev/null 2>&1 || { \
	  echo "bisect_ppx is not installed; run: opam install bisect_ppx"; \
	  exit 1; }
	@find _build -name '*.coverage' -delete 2>/dev/null || true
	dune runtest --instrument-with bisect_ppx --force
	bisect-ppx-report html -o _coverage
	bisect-ppx-report summary --per-file
	@echo "HTML report: _coverage/index.html"

# CI gate: lib/corelite's mean per-file line coverage must not drop
# below the committed floor in .github/coverage-baseline.
check-coverage: coverage
	@baseline=$$(cat .github/coverage-baseline); \
	actual=$$(bisect-ppx-report summary --per-file \
	  | awk '/lib\/corelite\// { gsub(/%/, "", $$1); sum += $$1; n += 1 } \
	         END { if (n > 0) printf "%.0f", sum / n; else print 0 }'); \
	echo "lib/corelite mean line coverage: $$actual% (floor $$baseline%)"; \
	if [ "$$actual" -lt "$$baseline" ]; then \
	  echo "coverage regression: $$actual% < committed floor $$baseline%"; \
	  exit 1; \
	fi

clean:
	dune clean
	rm -rf _coverage
