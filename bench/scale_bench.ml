(* Scale benchmark: events/s and peak RSS versus flow count on
   generated topologies (the 10^3 -> 10^6 ladder).

   Each point regenerates its graph, FIB and flow population from
   (seed, label), runs one scheme through Workload.Scale's streaming
   harness, and reports wall time, executed events, delivered packets,
   throughput and the process peak RSS (VmHWM). VmHWM is a high-water
   mark, so the ladder runs in ascending flow order and each point's
   figure is "peak RSS after this point completed" — the sub-linearity
   witness is the ratio between successive rungs staying far below the
   10x flow-count ratio.

   results/BENCH_scale.json is the committed artefact. CI gates on
   [--min-events-per-s] (every point) and [--max-rss-mb] (final peak),
   both deterministic enough for shared runners because events and RSS
   are dominated by simulation structure, not machine noise. *)

let now () = Unix.gettimeofday () (* lint: determinism-ok *)

let quick = ref false

let huge = ref false

let out_path = ref (Filename.concat "results" "BENCH_scale.json")

let min_events_per_s = ref 0.

let max_rss_mb = ref infinity

let seed = ref 42

(* Peak resident set (VmHWM) in MB from /proc/self/status; 0 when the
   proc filesystem is unavailable (non-Linux dev machines). *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0.
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
            (fun kb -> float_of_int kb /. 1024.)
        else scan ()
    in
    let mb = scan () in
    close_in ic;
    mb

type point = {
  id : string;
  graph : Workload.Scale.graph_spec;
  n_flows : int;
  duration : float;
}

let ladder () =
  let base =
    [
      { id = "fattree-k8/1e3"; graph = Workload.Scale.Fattree 8; n_flows = 1_000; duration = 10. };
      { id = "fattree-k8/1e4"; graph = Workload.Scale.Fattree 8; n_flows = 10_000; duration = 10. };
    ]
  in
  let big =
    [
      { id = "as-n512-m2/1e4";
        graph = Workload.Scale.As_graph { nodes = 512; m = 2 };
        n_flows = 10_000; duration = 10. };
      { id = "fattree-k16/1e5"; graph = Workload.Scale.Fattree 16; n_flows = 100_000; duration = 10. };
    ]
  in
  let monster =
    [ { id = "fattree-k16/1e6"; graph = Workload.Scale.Fattree 16; n_flows = 1_000_000; duration = 5. } ]
  in
  base @ (if !quick then [] else big) @ if !huge then monster else []

type obs = {
  point : point;
  wall_s : float;
  events : int;
  sent : int;
  delivered : int;
  drops : int;
  jain : float;
  mean_rate : float;
  rss_mb : float;  (** process peak RSS after this point, cumulative *)
}

let run_point p =
  Gc.compact ();
  let engine = Sim.Engine.create () in
  let t0 = now () in
  let r =
    Workload.Scale.run ~engine ~seed:!seed ~label:("bench/" ^ p.id)
      ~graph:p.graph ~n_flows:p.n_flows ~scheme:Workload.Scale.Corelite
      ~duration:p.duration ()
  in
  let wall_s = now () -. t0 in
  {
    point = p;
    wall_s;
    events = r.Workload.Scale.events;
    sent = r.Workload.Scale.sent;
    delivered = r.Workload.Scale.delivered;
    drops = r.Workload.Scale.drops;
    jain = r.Workload.Scale.jain_weighted;
    mean_rate = r.Workload.Scale.mean_rate;
    rss_mb = peak_rss_mb ();
  }

let events_per_s o = float_of_int o.events /. Float.max 1e-9 o.wall_s

let obs_json o =
  Printf.sprintf
    "{\"id\": \"%s\", \"graph\": \"%s\", \"flows\": %d, \"duration_s\": %.1f, \
     \"wall_s\": %.3f, \"events\": %d, \"events_per_s\": %.0f, \"sent\": %d, \
     \"delivered\": %d, \"drops\": %d, \"jain_weighted\": %.4f, \
     \"mean_rate_pps\": %.3f, \"peak_rss_mb\": %.1f}"
    o.point.id
    (Workload.Scale.graph_name o.point.graph)
    o.point.n_flows o.point.duration o.wall_s o.events (events_per_s o) o.sent
    o.delivered o.drops o.jain o.mean_rate o.rss_mb

let write_report observations =
  let oc = open_out !out_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"harness\": \"bench/scale_bench.ml\",\n";
  p "  \"mode\": \"%s\",\n"
    (if !quick then "quick" else if !huge then "huge" else "full");
  p "  \"seed\": %d,\n" !seed;
  p "  \"scheme\": \"corelite\",\n";
  p "  \"points\": [\n";
  List.iteri
    (fun i o ->
      p "    %s%s\n" (obs_json o)
        (if i = List.length observations - 1 then "" else ","))
    observations;
  p "  ],\n";
  p "  \"peak_rss_mb\": %.1f\n"
    (List.fold_left (fun acc o -> Float.max acc o.rss_mb) 0. observations);
  p "}\n";
  close_out oc

let () =
  Arg.parse
    [
      ("--quick", Arg.Set quick, "  fat-tree k=8 rungs only (CI smoke test)");
      ("--huge", Arg.Set huge, "  add the fat-tree k=16 10^6-flow rung");
      ("--seed", Arg.Set_int seed, "N  scenario seed (default 42)");
      ( "--out",
        Arg.Set_string out_path,
        "PATH  report path (default results/BENCH_scale.json)" );
      ( "--min-events-per-s",
        Arg.Set_float min_events_per_s,
        "N  fail if any point simulates slower than N events/s" );
      ( "--max-rss-mb",
        Arg.Set_float max_rss_mb,
        "N  fail if the final peak RSS exceeds N MB" );
    ]
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "scale_bench.exe [--quick] [--huge] [--out PATH] [--min-events-per-s N] \
     [--max-rss-mb N]";
  let observations = List.map run_point (ladder ()) in
  write_report observations;
  List.iter
    (fun o ->
      Printf.printf
        "%-18s %8d flows  %7.2f s  %9d events  %8.0f ev/s  jain %.3f  rss \
         %.0f MB\n"
        o.point.id o.point.n_flows o.wall_s o.events (events_per_s o) o.jain
        o.rss_mb)
    observations;
  let final_rss =
    List.fold_left (fun acc o -> Float.max acc o.rss_mb) 0. observations
  in
  Printf.printf "peak rss: %.1f MB  report: %s\n" final_rss !out_path;
  let slow =
    List.filter (fun o -> events_per_s o < !min_events_per_s) observations
  in
  List.iter
    (fun o ->
      Printf.eprintf "scale_bench: %s BELOW EVENT-RATE FLOOR (%.0f < %.0f ev/s)\n"
        o.point.id (events_per_s o) !min_events_per_s)
    slow;
  if final_rss > !max_rss_mb then
    Printf.eprintf "scale_bench: PEAK RSS OVER CEILING (%.1f > %.1f MB)\n"
      final_rss !max_rss_mb;
  if slow <> [] || final_rss > !max_rss_mb then exit 1
