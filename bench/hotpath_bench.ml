(* Hot-path microbenchmark: per-run throughput and GC pressure.

   Replays the figure workloads (and a sweep slice) serially and
   reports, per run: wall time, executed events, simulated packets
   (sum of link arrivals over the whole topology), and the minor/
   promoted heap words allocated — the metric the zero-allocation
   hot path is judged by, because allocation counts are deterministic
   where wall-clock is not (CI runs on noisy shared machines).

   results/BENCH_hotpath.json is the committed artefact; pass
   [--baseline PATH] to embed a previous report (the "before" numbers)
   so a single file carries the comparison, and [--budget N] to exit
   non-zero when any figure run allocates more than N minor words per
   simulated packet — the deterministic regression gate CI uses.

   Wall-clock timing is the point of this harness, hence the explicit
   waiver on the L1 wall-clock ban below. *)

let now () = Unix.gettimeofday () (* lint: determinism-ok *)

let quick = ref false

let out_path = ref (Filename.concat "results" "BENCH_hotpath.json")

let baseline_path = ref ""

let budget = ref infinity

type obs = {
  id : string;
  wall_s : float;
  events : int;
  packets : int;
  minor_words : float;
  promoted_words : float;
}

(* Every packet arrival at every link, access links included: the
   per-hop hot path is what we are counting allocations against. *)
let packets_of (result : Workload.Runner.result) =
  List.fold_left
    (fun acc l -> acc + l.Net.Link.arrivals)
    0
    (Net.Topology.links
       result.Workload.Runner.network.Workload.Network.topology)

let measure ~id f =
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  let t0 = now () in
  let events, packets = f () in
  let wall_s = now () -. t0 in
  let s1 = Gc.quick_stat () in
  {
    id;
    wall_s;
    events;
    packets;
    minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
    promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
  }

let run_figure (spec : Workload.Figures.spec) =
  measure ~id:spec.Workload.Figures.id (fun () ->
      let result = Workload.Figures.run spec in
      ( Sim.Engine.executed
          result.Workload.Runner.network.Workload.Network.engine,
        packets_of result ))

(* A sweep slice: one Figure-5-shaped run per parameter point, serial.
   Sweeps do not expose their networks, so this observation reports
   wall time and allocation only (packets = 0 means "not counted"). *)
let run_sweep ~id points =
  measure ~id (fun () ->
      let pts = points () in
      ignore (Sys.opaque_identity pts);
      (0, 0))

let figure_specs () =
  if !quick then [ Workload.Figures.fig5 (); Workload.Figures.fig7 () ]
  else Workload.Figures.all ()

let sweep_specs () : (string * (unit -> Workload.Sweeps.point list)) list =
  if !quick then
    [
      ( "sweep:k1=1",
        fun () ->
          [ Workload.Sweeps.run_point ~label:"k1=1" Corelite.Params.default ] );
    ]
  else
    [
      ("sweep:core_epoch", Workload.Sweeps.core_epoch);
      ("sweep:qthresh", Workload.Sweeps.qthresh);
    ]

let words_per_packet o =
  if o.packets = 0 then 0. else o.minor_words /. float_of_int o.packets

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON (no JSON dependency in the image). *)

let obs_json o =
  Printf.sprintf
    "{\"id\": \"%s\", \"wall_s\": %.4f, \"events\": %d, \"packets\": %d, \
     \"events_per_s\": %.0f, \"packets_per_s\": %.0f, \"minor_words\": %.0f, \
     \"promoted_words\": %.0f, \"minor_words_per_packet\": %.2f}"
    o.id o.wall_s o.events o.packets
    (float_of_int o.events /. Float.max 1e-9 o.wall_s)
    (float_of_int o.packets /. Float.max 1e-9 o.wall_s)
    o.minor_words o.promoted_words (words_per_packet o)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  String.trim s

let write_report ~figures ~sweeps ~worst =
  let oc = open_out !out_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"harness\": \"bench/hotpath_bench.ml\",\n";
  p "  \"mode\": \"%s\",\n" (if !quick then "quick" else "full");
  p "  \"figures\": [\n";
  List.iteri
    (fun i o ->
      p "    %s%s\n" (obs_json o)
        (if i = List.length figures - 1 then "" else ","))
    figures;
  p "  ],\n";
  p "  \"sweeps\": [\n";
  List.iteri
    (fun i o ->
      p "    {\"id\": \"%s\", \"wall_s\": %.4f, \"minor_words\": %.0f, \
         \"promoted_words\": %.0f}%s\n"
        o.id o.wall_s o.minor_words o.promoted_words
        (if i = List.length sweeps - 1 then "" else ","))
    sweeps;
  p "  ],\n";
  p "  \"max_minor_words_per_packet\": %.2f,\n" worst;
  (if Float.is_finite !budget then p "  \"budget\": %.2f,\n" !budget);
  (match !baseline_path with
  | "" -> p "  \"baseline\": null\n"
  | path -> p "  \"baseline\": %s\n" (read_file path));
  p "}\n";
  close_out oc

let () =
  Arg.parse
    [
      ("--quick", Arg.Set quick, "  reduced workload set (CI smoke test)");
      ( "--out",
        Arg.Set_string out_path,
        "PATH  report path (default results/BENCH_hotpath.json)" );
      ( "--baseline",
        Arg.Set_string baseline_path,
        "PATH  embed a previous report as the \"baseline\" field" );
      ( "--budget",
        Arg.Set_float budget,
        "N  fail if any figure allocates more than N minor words per packet"
      );
    ]
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "hotpath_bench.exe [--quick] [--out PATH] [--baseline PATH] [--budget N]";
  let figures = List.map run_figure (figure_specs ()) in
  let sweeps = List.map (fun (id, pts) -> run_sweep ~id pts) (sweep_specs ()) in
  let worst =
    List.fold_left (fun acc o -> Float.max acc (words_per_packet o)) 0. figures
  in
  write_report ~figures ~sweeps ~worst;
  List.iter
    (fun o ->
      Printf.printf
        "%-6s %7.3f s  %9d events  %9d packets  %10.0f ev/s  %6.1f \
         minor words/pkt\n"
        o.id o.wall_s o.events o.packets
        (float_of_int o.events /. Float.max 1e-9 o.wall_s)
        (words_per_packet o))
    figures;
  List.iter
    (fun o ->
      Printf.printf "%-16s %7.3f s  %12.0f minor words\n" o.id o.wall_s
        o.minor_words)
    sweeps;
  Printf.printf "max minor words/packet: %.2f  report: %s\n" worst !out_path;
  if worst > !budget then begin
    Printf.eprintf
      "hotpath_bench: ALLOCATION BUDGET EXCEEDED (%.2f > %.2f minor \
       words/packet)\n"
      worst !budget;
    exit 1
  end
