(* Chaos battery harness: Corelite robustness under deterministic fault
   injection.

   Runs the Workload.Chaos battery twice — serially and sharded across
   domains through Workload.Pool — and checks two acceptance gates:

   - determinism: the pooled run's CSV payload is byte-identical to the
     serial one (and, because every fault draw descends from
     (fault_seed, point label), so is any rerun with the same seeds);
   - graceful degradation: at 10% uniform marker loss the weighted Jain
     index keeps at least 90% of its loss-free value.

   Writes a machine-readable report to results/BENCH_chaos.json and
   exits non-zero if either gate fails, so CI uses it as a smoke test:

     dune exec bench/chaos_bench.exe -- --quick -j 2

   The report deliberately contains no wall-clock times or machine
   facts: two runs with the same flags must produce byte-identical
   reports, which the CI chaos-smoke job checks with cmp. *)

let domains = ref (Workload.Pool.default_domains ())

let quick = ref false

let seed = ref 42

let fault_seed = ref Workload.Chaos.default_fault_seed

let out_path = ref (Filename.concat "results" "BENCH_chaos.json")

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_report ~groups ~deterministic ~jain_free ~jain_lossy ~degradation_ok =
  let oc = open_out !out_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"harness\": \"bench/chaos_bench.ml\",\n";
  p "  \"mode\": \"%s\",\n" (if !quick then "quick" else "full");
  p "  \"seed\": %d,\n" !seed;
  p "  \"fault_seed\": %d,\n" !fault_seed;
  p "  \"groups\": [\n";
  let n_groups = List.length groups in
  List.iteri
    (fun gi (name, points) ->
      p "    {\"name\": \"%s\", \"points\": [\n" (escape name);
      let n = List.length points in
      List.iteri
        (fun i (pt : Workload.Chaos.point) ->
          p "      {\"label\": \"%s\", \"level\": %g, \"jain\": %.6f, \
             \"goodput\": %.3f, \"core_drops\": %d, \"injected_drops\": %d, \
             \"stripped_markers\": %d, \"lost_feedback\": %d, \"flaps\": %d, \
             \"feedback\": %d}%s\n"
            (escape pt.Workload.Chaos.label)
            pt.Workload.Chaos.level pt.Workload.Chaos.jain pt.Workload.Chaos.goodput
            pt.Workload.Chaos.core_drops pt.Workload.Chaos.injected_drops
            pt.Workload.Chaos.stripped_markers pt.Workload.Chaos.lost_feedback
            pt.Workload.Chaos.flaps pt.Workload.Chaos.feedback
            (if i = n - 1 then "" else ","))
        points;
      p "    ]}%s\n" (if gi = n_groups - 1 then "" else ","))
    groups;
  p "  ],\n";
  p "  \"jain_loss_free\": %.6f,\n" jain_free;
  p "  \"jain_at_10pct_marker_loss\": %.6f,\n" jain_lossy;
  p "  \"degradation_ok\": %b,\n" degradation_ok;
  p "  \"deterministic\": %b\n" deterministic;
  p "}\n";
  close_out oc

let find_marker_loss_jain groups level =
  match List.assoc_opt "marker loss" groups with
  | None -> nan
  | Some points -> (
    match
      List.find_opt
        (fun (pt : Workload.Chaos.point) ->
          Sim.Floats.near ~tolerance:1e-9 pt.Workload.Chaos.level level)
        points
    with
    | Some pt -> pt.Workload.Chaos.jain
    | None -> nan)

let () =
  Arg.parse
    [
      ("-j", Arg.Set_int domains, "N  shard the parallel pass over N domains");
      ("--domains", Arg.Set_int domains, "N  same as -j");
      ("--quick", Arg.Set quick, "  32 s runs instead of 80 s (CI smoke test)");
      ("--seed", Arg.Set_int seed, "N  workload seed (default 42)");
      ( "--fault-seed",
        Arg.Set_int fault_seed,
        "N  fault-plan seed; same seed replays every fault draw (default 271828)" );
      ( "--out",
        Arg.Set_string out_path,
        "PATH  report path (default results/BENCH_chaos.json)" );
    ]
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "chaos_bench.exe [-j N] [--quick] [--seed N] [--fault-seed N] [--out PATH]";
  let serial =
    Workload.Chaos.all ~seed:!seed ~quick:!quick ~fault_seed:!fault_seed ()
  in
  let parallel =
    Workload.Chaos.all_parallel ~domains:!domains ~seed:!seed ~quick:!quick
      ~fault_seed:!fault_seed ()
  in
  let serial_csv = Workload.Chaos.csv_of_groups serial in
  let parallel_csv = Workload.Chaos.csv_of_groups parallel in
  let deterministic = String.equal serial_csv parallel_csv in
  let jain_free = find_marker_loss_jain serial 0. in
  let jain_lossy = find_marker_loss_jain serial 0.1 in
  let degradation_ok =
    Float.is_finite jain_free
    && Float.is_finite jain_lossy
    && jain_lossy >= 0.9 *. jain_free
  in
  write_report ~groups:serial ~deterministic ~jain_free ~jain_lossy ~degradation_ok;
  List.iter (fun g -> Format.printf "%a@." Workload.Chaos.pp_points g) serial;
  Printf.printf
    "jain loss-free %.4f  at 10%% marker loss %.4f (ratio %.3f, gate 0.9)\n"
    jain_free jain_lossy
    (jain_lossy /. Float.max 1e-9 jain_free);
  Printf.printf "deterministic(serial = %d domains) %b\n" !domains deterministic;
  Printf.printf "report: %s\n" !out_path;
  if not deterministic then begin
    prerr_endline "chaos_bench: PARALLEL RUN DIVERGED FROM SERIAL";
    exit 1
  end;
  if not degradation_ok then begin
    prerr_endline "chaos_bench: FAIRNESS DEGRADED BEYOND THE 0.9 GATE";
    exit 1
  end
