(* Churn battery harness: dynamic workloads, flash crowds and
   adversarial heavy hitters under time-windowed fairness gates.

   Runs the Workload.Churn battery twice — serially and sharded across
   domains through Workload.Pool — and checks two acceptance gates:

   - determinism: the pooled run's CSV payload is byte-identical to the
     serial one (and, because every arrival, size and fault draw
     descends from (seed, label) or (fault_seed, label), so is any
     rerun with the same seeds);
   - windowed fairness: Corelite's mean windowed Jain index under 10%
     flow churn AND under the CLEF-style adversary keeps at least 85%
     of its static-workload value.

   Writes a machine-readable report to results/BENCH_churn.json and
   exits non-zero if either gate fails, so CI uses it as a smoke test:

     dune exec bench/churn_bench.exe -- --quick -j 2

   The report deliberately contains no wall-clock times or machine
   facts: two runs with the same flags must produce byte-identical
   reports, which the CI churn-smoke job checks with cmp. *)

let domains = ref (Workload.Pool.default_domains ())

let quick = ref false

let seed = ref 42

let fault_seed = ref Workload.Churn.default_fault_seed

let gate_ratio = 0.85

let out_path = ref (Filename.concat "results" "BENCH_churn.json")

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_report ~groups ~deterministic ~gates ~gates_ok ~leaked =
  let oc = open_out !out_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"harness\": \"bench/churn_bench.ml\",\n";
  p "  \"mode\": \"%s\",\n" (if !quick then "quick" else "full");
  p "  \"seed\": %d,\n" !seed;
  p "  \"fault_seed\": %d,\n" !fault_seed;
  p "  \"gate_ratio\": %.2f,\n" gate_ratio;
  p "  \"groups\": [\n";
  let n_groups = List.length groups in
  List.iteri
    (fun gi (name, points) ->
      p "    {\"name\": \"%s\", \"points\": [\n" (escape name);
      let n = List.length points in
      List.iteri
        (fun i (pt : Workload.Churn.point) ->
          p "      {\"label\": \"%s\", \"variant\": \"%s\", \"arrivals\": %d, \
             \"completed\": %d, \"expired\": %d, \"leaked\": %d, \
             \"windowed_jain\": %.6f, \"goodput\": %.3f, \
             \"adversary_share\": %.6f, \"core_drops\": %d, \
             \"injected_drops\": %d}%s\n"
            (escape pt.Workload.Churn.label)
            (escape pt.Workload.Churn.variant)
            pt.Workload.Churn.arrivals pt.Workload.Churn.completed
            pt.Workload.Churn.expired pt.Workload.Churn.leaked
            pt.Workload.Churn.windowed_jain pt.Workload.Churn.goodput
            pt.Workload.Churn.adversary_share pt.Workload.Churn.core_drops
            pt.Workload.Churn.injected_drops
            (if i = n - 1 then "" else ","))
        points;
      p "    ]}%s\n" (if gi = n_groups - 1 then "" else ","))
    groups;
  p "  ],\n";
  p "  \"corelite_gates\": [\n";
  let n_gates = List.length gates in
  List.iteri
    (fun i (variant, jain, baseline, pass) ->
      p "    {\"variant\": \"%s\", \"windowed_jain\": %.6f, \
         \"static_baseline\": %.6f, \"pass\": %b}%s\n"
        (escape variant) jain baseline pass
        (if i = n_gates - 1 then "" else ","))
    gates;
  p "  ],\n";
  p "  \"leaked_flow_state\": %d,\n" leaked;
  p "  \"gates_ok\": %b,\n" gates_ok;
  p "  \"deterministic\": %b\n" deterministic;
  p "}\n";
  close_out oc

let () =
  Arg.parse
    [
      ("-j", Arg.Set_int domains, "N  shard the parallel pass over N domains");
      ("--domains", Arg.Set_int domains, "N  same as -j");
      ("--quick", Arg.Set quick, "  40 s runs instead of 80 s (CI smoke test)");
      ("--seed", Arg.Set_int seed, "N  workload seed (default 42)");
      ( "--fault-seed",
        Arg.Set_int fault_seed,
        "N  fault-plan seed; same seed replays every fault draw (default 271828)" );
      ( "--out",
        Arg.Set_string out_path,
        "PATH  report path (default results/BENCH_churn.json)" );
    ]
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "churn_bench.exe [-j N] [--quick] [--seed N] [--fault-seed N] [--out PATH]";
  let serial =
    Workload.Churn.all ~seed:!seed ~quick:!quick ~fault_seed:!fault_seed ()
  in
  let parallel =
    Workload.Churn.all_parallel ~domains:!domains ~seed:!seed ~quick:!quick
      ~fault_seed:!fault_seed ()
  in
  let serial_csv = Workload.Churn.csv_of_groups serial in
  let parallel_csv = Workload.Churn.csv_of_groups parallel in
  let deterministic = String.equal serial_csv parallel_csv in
  let corelite_points =
    match List.assoc_opt "corelite" serial with
    | Some points -> points
    | None -> failwith "churn_bench: no corelite group in the battery"
  in
  let gates = Workload.Churn.gate ~ratio:gate_ratio corelite_points in
  let gates_ok = List.for_all (fun (_, _, _, pass) -> pass) gates in
  let leaked =
    List.fold_left
      (fun acc (_, points) ->
        List.fold_left
          (fun acc (pt : Workload.Churn.point) ->
            acc + pt.Workload.Churn.leaked)
          acc points)
      0 serial
  in
  write_report ~groups:serial ~deterministic ~gates ~gates_ok ~leaked;
  List.iter (fun g -> Format.printf "%a@." Workload.Churn.pp_points g) serial;
  List.iter
    (fun (variant, jain, baseline, pass) ->
      Printf.printf
        "corelite %-12s windowed jain %.4f vs static %.4f (ratio %.3f, gate \
         %.2f) %s\n"
        variant jain baseline
        (jain /. Float.max 1e-9 baseline)
        gate_ratio
        (if pass then "OK" else "FAIL"))
    gates;
  Printf.printf "deterministic(serial = %d domains) %b  leaked flow state %d\n"
    !domains deterministic leaked;
  Printf.printf "report: %s\n" !out_path;
  if not deterministic then begin
    prerr_endline "churn_bench: PARALLEL RUN DIVERGED FROM SERIAL";
    exit 1
  end;
  if leaked <> 0 then begin
    prerr_endline "churn_bench: FLOW TABLE LEAKED SOFT STATE AFTER THE DRAIN";
    exit 1
  end;
  if not gates_ok then begin
    prerr_endline "churn_bench: WINDOWED FAIRNESS BELOW THE 0.85 GATE";
    exit 1
  end
