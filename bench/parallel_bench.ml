(* Serial-vs-parallel regeneration benchmark for the figure scenarios.

   Runs the figure set twice — once serially, once sharded across
   domains through Workload.Pool — times both, verifies that the pooled
   run is bit-identical to the serial one (CSV payloads and summaries),
   and writes a machine-readable report to results/BENCH_parallel.json.

   Exits non-zero if the determinism check fails, so CI can use it as a
   smoke test:  dune exec bench/parallel_bench.exe -- --quick -j 2

   Wall-clock timing is the entire point of this harness, hence the
   explicit waivers on the L1 wall-clock ban below. *)

let now () = Unix.gettimeofday () (* lint: determinism-ok *)

let domains = ref (Workload.Pool.default_domains ())

let quick = ref false

let out_path = ref (Filename.concat "results" "BENCH_parallel.json")

let specs () =
  if !quick then
    (* The sub-second scenarios: enough to exercise sharding and the
       determinism check without the 2 s fig3/fig4 runs. *)
    [
      Workload.Figures.fig5 (); Workload.Figures.fig6 ();
      Workload.Figures.fig7 (); Workload.Figures.fig8 ();
    ]
  else Workload.Figures.all ()

(* Everything we compare between the two runs: the exact CSV bytes the
   coordinator would write, plus the summary the tables are built from. *)
type observation = {
  spec : Workload.Figures.spec;
  payloads : (string * string) list;
  summary : Workload.Figures.summary;
  events : int;
  wall_s : float;  (* serial pass only; 0 in the parallel pass *)
  minor_words : float;  (* serial pass only; GC pressure of the scenario *)
  promoted_words : float;
}

let observe (spec : Workload.Figures.spec) (result : Workload.Runner.result) wall_s
    ~minor_words ~promoted_words =
  {
    spec;
    payloads = Workload.Csv.result_strings result;
    summary = Workload.Figures.summarize spec result;
    events = Sim.Engine.executed result.Workload.Runner.network.Workload.Network.engine;
    wall_s;
    minor_words;
    promoted_words;
  }

let serial_pass () =
  List.map
    (fun spec ->
      (* Settle the heap first so the per-scenario allocation counters
         measure the scenario, not the previous iteration's garbage. *)
      Gc.full_major ();
      let g0 = Gc.quick_stat () in
      let t0 = now () in
      let result = Workload.Figures.run spec in
      let wall = now () -. t0 in
      let g1 = Gc.quick_stat () in
      observe spec result wall
        ~minor_words:(g1.Gc.minor_words -. g0.Gc.minor_words)
        ~promoted_words:(g1.Gc.promoted_words -. g0.Gc.promoted_words))
    (specs ())

let parallel_pass () =
  let t0 = now () in
  let runs = Workload.Figures.run_all ~domains:!domains (specs ()) in
  let wall = now () -. t0 in
  ( List.map
      (fun (spec, result) ->
        observe spec result 0. ~minor_words:0. ~promoted_words:0.)
      runs,
    wall )

let identical (a : observation) (b : observation) =
  a.payloads = b.payloads && a.summary = b.summary && a.events = b.events

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON (no JSON dependency in the image). *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_report ~serial ~serial_total ~parallel_total ~deterministic =
  let oc = open_out !out_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"harness\": \"bench/parallel_bench.ml\",\n";
  p "  \"mode\": \"%s\",\n" (if !quick then "quick" else "full");
  p "  \"recommended_domain_count\": %d,\n"
    (Workload.Pool.default_domains ());
  p "  \"domains\": %d,\n" !domains;
  p "  \"figures\": [\n";
  List.iteri
    (fun i o ->
      p "    {\"id\": \"%s\", \"wall_s\": %.4f, \"events\": %d, \
         \"events_per_s\": %.0f, \"minor_words\": %.0f, \
         \"promoted_words\": %.0f}%s\n"
        (escape o.spec.Workload.Figures.id)
        o.wall_s o.events
        (float_of_int o.events /. Float.max 1e-9 o.wall_s)
        o.minor_words o.promoted_words
        (if i = List.length serial - 1 then "" else ","))
    serial;
  p "  ],\n";
  p "  \"serial_total_s\": %.4f,\n" serial_total;
  p "  \"parallel_total_s\": %.4f,\n" parallel_total;
  p "  \"speedup\": %.3f,\n" (serial_total /. Float.max 1e-9 parallel_total);
  p "  \"deterministic\": %b\n" deterministic;
  p "}\n";
  close_out oc

let () =
  Arg.parse
    [
      ("-j", Arg.Set_int domains, "N  shard the parallel pass over N domains");
      ("--domains", Arg.Set_int domains, "N  same as -j");
      ("--quick", Arg.Set quick, "  reduced scenario set (CI smoke test)");
      ("--out", Arg.Set_string out_path, "PATH  report path (default results/BENCH_parallel.json)");
    ]
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "parallel_bench.exe [-j N] [--quick] [--out PATH]";
  let serial = serial_pass () in
  let serial_total = List.fold_left (fun acc o -> acc +. o.wall_s) 0. serial in
  let parallel, parallel_total = parallel_pass () in
  let deterministic = List.for_all2 identical serial parallel in
  write_report ~serial ~serial_total ~parallel_total ~deterministic;
  List.iter
    (fun o ->
      Printf.printf "%-6s %7.3f s  %9d events  %10.0f events/s  %12.0f minor words\n"
        o.spec.Workload.Figures.id o.wall_s o.events
        (float_of_int o.events /. Float.max 1e-9 o.wall_s)
        o.minor_words)
    serial;
  Printf.printf
    "serial %.3f s  parallel(%d domains) %.3f s  speedup %.2fx  deterministic %b\n"
    serial_total !domains parallel_total
    (serial_total /. Float.max 1e-9 parallel_total)
    deterministic;
  Printf.printf "report: %s\n" !out_path;
  if not deterministic then begin
    prerr_endline "parallel_bench: PARALLEL RUN DIVERGED FROM SERIAL";
    exit 1
  end
